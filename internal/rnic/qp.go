package rnic

import (
	"p4ce/internal/otrace"
	"p4ce/internal/roce"
	"p4ce/internal/sim"
	"p4ce/internal/simnet"
)

// State is the queue pair lifecycle state (collapsed INIT/RTR/RTS).
type State int

// Queue pair states.
const (
	StateReset State = iota
	StateReady
	StateError
)

// String names the state.
func (s State) String() string {
	switch s {
	case StateReset:
		return "RESET"
	case StateReady:
		return "READY"
	case StateError:
		return "ERROR"
	default:
		return "UNKNOWN"
	}
}

// wrType distinguishes posted operations.
type wrType int

const (
	wrWrite wrType = iota
	wrRead
	wrSend
)

// workRequest is one posted operation moving through the send pipeline.
// Requests are pooled per NIC (see NIC.getWR/putWR) and recycled once
// they leave the send queues.
type workRequest struct {
	typ wrType
	// data holds the payload for writes/sends. It is a pooled snapshot
	// of the caller's buffer, taken at post time: retransmissions read
	// from it long after the post returns, and snapshotting frees the
	// caller to reuse (or recycle) its own buffer immediately.
	data       []byte
	dataPooled bool   // data came from the kernel buffer pool
	dst        []byte // destination buffer for reads (caller-owned)
	remoteVA   uint64
	rkey       uint32
	done       func(error)

	firstPSN  uint32 // assigned when the request starts transmitting
	lastPSN   uint32
	completed bool
	// trace carries the originating operation's causal trace ID (zero
	// when untraced); putWR's struct reset clears it with the rest.
	trace otrace.ID
}

// wrQueue is a FIFO of work requests backed by a reusable array: popped
// slots are reclaimed once the queue drains (and the head shifts down
// when it grows past the live window), so a steady post/complete cycle
// never reallocates the backing store the way re-slicing with [1:] does.
type wrQueue struct {
	items []*workRequest
	head  int
}

// Len returns the number of queued requests.
func (q *wrQueue) Len() int { return len(q.items) - q.head }

// Push appends a request.
func (q *wrQueue) Push(wr *workRequest) {
	if q.head > 0 && q.head == len(q.items) {
		q.items = q.items[:0]
		q.head = 0
	}
	q.items = append(q.items, wr)
}

// Front returns the oldest request without removing it.
func (q *wrQueue) Front() *workRequest { return q.items[q.head] }

// At returns the i-th oldest request.
func (q *wrQueue) At(i int) *workRequest { return q.items[q.head+i] }

// PopFront removes and returns the oldest request.
func (q *wrQueue) PopFront() *workRequest {
	wr := q.items[q.head]
	q.items[q.head] = nil
	q.head++
	if q.head == len(q.items) {
		q.items = q.items[:0]
		q.head = 0
	}
	return wr
}

func (wr *workRequest) complete(err error) {
	if wr.completed {
		return
	}
	wr.completed = true
	if wr.done != nil {
		wr.done(err)
	}
}

// psnSpan returns how many PSNs the request consumes (writes consume one
// per segment; reads consume one per response packet).
func (wr *workRequest) psnSpan(mtu int) int {
	switch wr.typ {
	case wrWrite:
		return roce.SegmentCount(len(wr.data), mtu)
	case wrRead:
		return roce.SegmentCount(len(wr.dst), mtu)
	default:
		return 1
	}
}

// QP is a reliable-connection queue pair. It contains both the requester
// machinery (send window, retransmission) and the responder machinery
// (expected PSN, slot accounting, ACK generation), exactly like the two
// halves of a hardware QP context.
type QP struct {
	nic   *NIC
	num   uint32
	state State

	remoteIP  simnet.Addr
	remoteQPN uint32

	// Requester side.
	sndPSN   uint32 // next PSN to assign
	pending  wrQueue
	inflight wrQueue
	credits  int // last credit count advertised by the responder
	retries  int
	rtTimer  sim.Timer
	rnrCount int       // consecutive RNR rounds without forward progress
	rnrTimer sim.Timer // pending RNR backoff, at most one at a time

	// Persistent callbacks, bound once in CreateQP so (re)arming the
	// retransmission or RNR timer and releasing responder slots do not
	// allocate a closure per event.
	timeoutFn  func()
	rnrFn      func()
	slotFreeFn func()
	// txPkt is the scratch packet the QP marshals outgoing traffic from;
	// NIC.transmit consumes it synchronously, so one per QP suffices.
	txPkt roce.Packet

	// Responder side.
	expPSN    uint32
	msn       uint32
	freeSlots int
	nakArmed  bool // a sequence NAK was already sent for the current gap
	// In-progress multi-packet inbound write.
	curMR        *MR
	curVA        uint64
	curRemaining int

	// onError is invoked once when the QP transitions to ERROR
	// asynchronously (timeout, fatal NAK).
	onError func(error)
	// onRecv receives SEND payloads (two-sided traffic).
	onRecv func(payload []byte)
}

// Num returns the queue pair number.
func (qp *QP) Num() uint32 { return qp.num }

// State returns the lifecycle state.
func (qp *QP) State() State { return qp.state }

// RemoteIP returns the connected peer address.
func (qp *QP) RemoteIP() simnet.Addr { return qp.remoteIP }

// RemoteQPN returns the connected peer queue pair number.
func (qp *QP) RemoteQPN() uint32 { return qp.remoteQPN }

// NextPSN returns the next send PSN (diagnostics and the switch control
// plane, which needs it when splicing connections).
func (qp *QP) NextPSN() uint32 { return qp.sndPSN }

// Credits returns the requester's view of the responder's capacity.
func (qp *QP) Credits() int { return qp.credits }

// SetOnError installs the asynchronous failure callback.
func (qp *QP) SetOnError(fn func(error)) { qp.onError = fn }

// SetOnRecv installs the SEND consumer.
func (qp *QP) SetOnRecv(fn func(payload []byte)) { qp.onRecv = fn }

// Connect moves the queue pair to READY, binding it to the remote
// endpoint. localPSN seeds this side's send sequence; remotePSN is the
// first PSN expected from the peer (both negotiated during the CM
// handshake).
func (qp *QP) Connect(remoteIP simnet.Addr, remoteQPN, localPSN, remotePSN uint32) {
	qp.remoteIP = remoteIP
	qp.remoteQPN = remoteQPN
	qp.sndPSN = localPSN & roce.PSNMask
	qp.expPSN = remotePSN & roce.PSNMask
	qp.freeSlots = qp.nic.cfg.ResponderSlots
	qp.credits = qp.nic.cfg.MaxOutstanding
	qp.state = StateReady
}

// PostWrite posts a one-sided RDMA write of data to the remote virtual
// address. done is invoked with nil once the write is acknowledged, or
// with an error if it fails.
func (qp *QP) PostWrite(data []byte, remoteVA uint64, rkey uint32, done func(error)) error {
	return qp.PostWriteTraced(data, remoteVA, rkey, 0, done)
}

// PostWriteTraced is PostWrite carrying a causal trace ID: the request
// marks the posted boundary when its PSNs are assigned and annotates
// them so downstream layers can recover the trace from the wire. A
// zero trace (or disabled tracing) makes it identical to PostWrite.
func (qp *QP) PostWriteTraced(data []byte, remoteVA uint64, rkey uint32, trace otrace.ID, done func(error)) error {
	if qp.state != StateReady {
		return ErrQPState
	}
	wr := qp.nic.getWR()
	wr.typ, wr.remoteVA, wr.rkey, wr.done = wrWrite, remoteVA, rkey, done
	wr.trace = trace
	wr.data, wr.dataPooled = qp.nic.captureData(data)
	return qp.post(wr)
}

// PostRead posts a one-sided RDMA read of len(dst) bytes from the remote
// virtual address into dst.
func (qp *QP) PostRead(dst []byte, remoteVA uint64, rkey uint32, done func(error)) error {
	if len(dst) == 0 {
		return ErrInvalidRequest
	}
	if qp.state != StateReady {
		return ErrQPState
	}
	wr := qp.nic.getWR()
	wr.typ, wr.dst, wr.remoteVA, wr.rkey, wr.done = wrRead, dst, remoteVA, rkey, done
	return qp.post(wr)
}

// PostSend posts a two-sided SEND carrying payload.
func (qp *QP) PostSend(payload []byte, done func(error)) error {
	if len(payload) > qp.nic.cfg.MTUPayload {
		return ErrInvalidRequest
	}
	if qp.state != StateReady {
		return ErrQPState
	}
	wr := qp.nic.getWR()
	wr.typ, wr.done = wrSend, done
	wr.data, wr.dataPooled = qp.nic.captureData(payload)
	return qp.post(wr)
}

func (qp *QP) post(wr *workRequest) error {
	qp.pending.Push(wr)
	qp.pump()
	return nil
}

// OutstandingRequests returns the number of un-acked requests.
func (qp *QP) OutstandingRequests() int { return qp.inflight.Len() }

// QueuedRequests returns the number of posted-but-untransmitted requests.
func (qp *QP) QueuedRequests() int { return qp.pending.Len() }

// setCredits interprets the 5-bit AETH credit field: the all-ones value
// means "no flow-control limit" (the IB spec's invalid-credit encoding),
// which saturated responders advertise; anything else is a hard bound.
func (qp *QP) setCredits(v uint8) {
	if v >= 31 {
		qp.credits = qp.nic.cfg.MaxOutstanding
		return
	}
	qp.credits = int(v)
}

// windowLimit is how many requests may be in flight right now: the QP's
// hardware window bounded by the responder's advertised credits. A floor
// of one lets a single probe go out when credits hit zero so the
// responder's RNR NAK (and eventual ACK) can restart the flow.
func (qp *QP) windowLimit() int {
	lim := qp.nic.cfg.MaxOutstanding
	if qp.credits < lim {
		lim = qp.credits
	}
	if lim < 1 {
		lim = 1
	}
	return lim
}

// pump transmits pending requests while the window allows.
func (qp *QP) pump() {
	if qp.pending.Len() > 0 && qp.inflight.Len() >= qp.windowLimit() &&
		qp.credits < qp.nic.cfg.MaxOutstanding {
		// Work is queued and the window is closed specifically because
		// the responder's advertised credits shrank it.
		qp.nic.mCreditStalls.Inc()
	}
	for qp.pending.Len() > 0 && qp.inflight.Len() < qp.windowLimit() {
		wr := qp.pending.PopFront()
		span := wr.psnSpan(qp.nic.cfg.MTUPayload)
		wr.firstPSN = qp.sndPSN
		wr.lastPSN = roce.PSNAdd(qp.sndPSN, span-1)
		qp.sndPSN = roce.PSNAdd(qp.sndPSN, span)
		if wr.trace != 0 {
			// B1: the WQE reached the wire pipeline. The PSN range is
			// keyed under the destination QP, which is what the switch
			// (or the replica, in direct mode) sees inbound.
			qp.nic.otr.Mark(qp.nic.oc, wr.trace, otrace.MarkPosted)
			qp.nic.otr.Annotate(wr.trace, qp.remoteQPN, wr.firstPSN, span)
		}
		qp.inflight.Push(wr)
		qp.transmitWR(wr)
	}
	qp.armTimer()
}

// transmitWR emits every packet of a request. Packets are staged in the
// QP's scratch txPkt: NIC.transmit marshals synchronously and never
// retains the struct.
func (qp *QP) transmitWR(wr *workRequest) {
	switch wr.typ {
	case wrWrite:
		n := roce.SegmentCount(len(wr.data), qp.nic.cfg.MTUPayload)
		for i := 0; i < n; i++ {
			seg := roce.WriteSegmentAt(len(wr.data), qp.nic.cfg.MTUPayload, wr.firstPSN, i, n)
			qp.txPkt = roce.Packet{
				SrcIP: qp.nic.ip, DstIP: qp.remoteIP, SrcPort: 49152,
				OpCode: seg.OpCode, DestQP: qp.remoteQPN, PSN: seg.PSN,
				AckReq:  i == n-1,
				Payload: wr.data[seg.Offset : seg.Offset+seg.Length],
			}
			if seg.OpCode.HasRETH() {
				qp.txPkt.VA = wr.remoteVA
				qp.txPkt.RKey = wr.rkey
				qp.txPkt.DMALen = uint32(len(wr.data))
			}
			qp.nic.transmit(&qp.txPkt)
		}
	case wrRead:
		qp.txPkt = roce.Packet{
			SrcIP: qp.nic.ip, DstIP: qp.remoteIP, SrcPort: 49152,
			OpCode: roce.OpReadRequest, DestQP: qp.remoteQPN, PSN: wr.firstPSN,
			VA: wr.remoteVA, RKey: wr.rkey, DMALen: uint32(len(wr.dst)),
		}
		qp.nic.transmit(&qp.txPkt)
	case wrSend:
		qp.txPkt = roce.Packet{
			SrcIP: qp.nic.ip, DstIP: qp.remoteIP, SrcPort: 49152,
			OpCode: roce.OpSendOnly, DestQP: qp.remoteQPN, PSN: wr.firstPSN,
			AckReq: true, Payload: wr.data,
		}
		qp.nic.transmit(&qp.txPkt)
	}
}

// armTimer (re)starts the retransmission timer while work is in flight.
// This runs on every ACK; the kernel's pooled events and cancel
// compaction keep the stop/re-arm churn from growing the heap.
func (qp *QP) armTimer() {
	qp.rtTimer.Stop()
	if qp.inflight.Len() == 0 || qp.state != StateReady {
		return
	}
	// Consecutive unproductive timeouts back the timer off exponentially
	// (capped at 8x): go-back-N re-injects the whole window, and firing
	// again before the duplicates drain would melt the link down.
	scale := sim.Time(1) << uint(qp.retries)
	if scale > 8 {
		scale = 8
	}
	qp.rtTimer = qp.nic.k.Schedule(qp.nic.cfg.AckTimeout*scale, qp.timeoutFn)
}

func (qp *QP) onTimeout() {
	if qp.state != StateReady || qp.inflight.Len() == 0 {
		return
	}
	qp.retries++
	if qp.retries > qp.nic.cfg.MaxRetries {
		qp.enterError(ErrRetryExceeded)
		return
	}
	qp.nic.Stats.Retransmits++
	qp.nic.mRTOFires.Inc()
	qp.nic.mRetransmits.Inc()
	qp.nic.mShardRTOFires.Inc()
	qp.nic.mShardRetransmits.Inc()
	for i := 0; i < qp.inflight.Len(); i++ { // go-back-N
		qp.transmitWR(qp.inflight.At(i))
	}
	qp.armTimer()
}

// enterError moves the QP to ERROR, flushing all queued work.
func (qp *QP) enterError(cause error) {
	if qp.state == StateError {
		return
	}
	qp.state = StateError
	qp.rtTimer.Stop()
	for qp.inflight.Len() > 0 {
		wr := qp.inflight.PopFront()
		wr.complete(cause)
		qp.nic.putWR(wr)
	}
	for qp.pending.Len() > 0 {
		wr := qp.pending.PopFront()
		wr.complete(cause)
		qp.nic.putWR(wr)
	}
	if qp.onError != nil {
		qp.onError(cause)
	}
}

// handlePacket dispatches an inbound packet to the requester or
// responder half.
func (qp *QP) handlePacket(p *roce.Packet) {
	if qp.state != StateReady {
		return
	}
	switch {
	case p.OpCode == roce.OpAcknowledge:
		qp.handleAck(p)
	case p.OpCode.IsReadResponse():
		qp.handleReadResponse(p)
	case p.OpCode.IsWrite():
		qp.handleInboundWrite(p)
	case p.OpCode == roce.OpReadRequest:
		qp.handleInboundRead(p)
	case p.OpCode == roce.OpSendOnly:
		qp.handleInboundSend(p)
	}
}

// ---- Requester half ----

func (qp *QP) handleAck(p *roce.Packet) {
	switch p.Syndrome.Type() {
	case roce.AckPositive:
		qp.setCredits(p.Syndrome.Value())
		qp.completeThrough(p.PSN)
		qp.retries = 0
		qp.rnrCount = 0 // forward progress clears the RNR budget
		qp.armTimer()
		qp.pump()
	case roce.AckRNR:
		qp.handleRNR()
	case roce.AckNAK:
		qp.handleNAK(p)
	}
}

// completeThrough finishes every in-flight request whose last PSN is at
// or before psn (ACKs are cumulative).
func (qp *QP) completeThrough(psn uint32) {
	for qp.inflight.Len() > 0 {
		wr := qp.inflight.Front()
		if roce.PSNDiff(wr.lastPSN, psn) > 0 {
			break
		}
		if wr.typ == wrRead && !wr.completed {
			// A bare ACK cannot complete a read; responses do that.
			break
		}
		qp.inflight.PopFront()
		if wr.trace != 0 {
			// B5: the (aggregated) acknowledgment completed the WQE.
			qp.nic.otr.Mark(qp.nic.oc, wr.trace, otrace.MarkAckRx)
		}
		wr.complete(nil)
		qp.nic.putWR(wr)
	}
	// Drop reads that were completed by their response packets but kept
	// in line for ordering.
	for qp.inflight.Len() > 0 && qp.inflight.Front().completed {
		qp.nic.putWR(qp.inflight.PopFront())
	}
}

func (qp *QP) handleRNR() {
	if qp.inflight.Len() == 0 || qp.rnrTimer.Active() {
		// A backoff round is already pending; a burst of writes draws one
		// RNR NAK per rejected message but only one retry round.
		return
	}
	qp.rnrCount++
	if qp.rnrCount > qp.nic.cfg.MaxRNRRetries {
		qp.enterError(ErrRNRRetryExceeded)
		return
	}
	qp.rnrTimer = qp.nic.k.Schedule(qp.nic.cfg.RNRDelay, qp.rnrFn)
}

// onRNRExpire retransmits the window after the RNR backoff.
func (qp *QP) onRNRExpire() {
	if qp.state != StateReady {
		return
	}
	for i := 0; i < qp.inflight.Len(); i++ {
		qp.transmitWR(qp.inflight.At(i))
	}
	qp.armTimer()
}

func (qp *QP) handleNAK(p *roce.Packet) {
	switch p.Syndrome.Value() {
	case roce.NakPSNSequenceError:
		// Retransmit everything from the NAKed PSN (go-back-N).
		qp.nic.Stats.Retransmits++
		qp.nic.mRetransmits.Inc()
		qp.nic.mShardRetransmits.Inc()
		for i := 0; i < qp.inflight.Len(); i++ {
			wr := qp.inflight.At(i)
			if roce.PSNDiff(wr.lastPSN, p.PSN) >= 0 {
				qp.transmitWR(wr)
			}
		}
		qp.armTimer()
	default:
		// Access/operation errors are fatal to the connection, which is
		// precisely the fencing mechanism Mu's permission switch relies on.
		qp.enterError(ErrRemoteAccess)
	}
}

func (qp *QP) handleReadResponse(p *roce.Packet) {
	var wr *workRequest
	for i := 0; i < qp.inflight.Len(); i++ {
		cand := qp.inflight.At(i)
		if cand.typ == wrRead && roce.PSNInWindow(p.PSN, cand.firstPSN, cand.psnSpan(qp.nic.cfg.MTUPayload)) {
			wr = cand
			break
		}
	}
	if wr == nil {
		return // stale or duplicate response
	}
	off := roce.PSNDiff(p.PSN, wr.firstPSN) * qp.nic.cfg.MTUPayload
	copy(wr.dst[off:], p.Payload)
	if p.OpCode.HasAETH() {
		qp.setCredits(p.Syndrome.Value())
	}
	if p.OpCode.EndsMessage() {
		// Snapshot the PSN span: completeThrough may pop and recycle wr.
		firstPSN, lastPSN := wr.firstPSN, wr.lastPSN
		// The response implicitly acknowledges everything before it.
		wr.complete(nil)
		qp.completeThrough(lastPSN)
		// Implicit NAK: a response for a later read while an earlier one
		// is still incomplete means that earlier response was lost — the
		// timer alone would starve it, since every later completion
		// resets it. Retransmit the skipped request now.
		if qp.inflight.Len() > 0 {
			head := qp.inflight.Front()
			if head.lastPSN != lastPSN && !head.completed && head.typ == wrRead &&
				roce.PSNDiff(head.lastPSN, firstPSN) < 0 {
				qp.transmitWR(head)
			}
		}
		qp.retries = 0
		qp.armTimer()
		qp.pump()
	}
}

// ---- Responder half ----

func (qp *QP) advertisedCredits() uint8 {
	c := qp.freeSlots
	if c > 31 {
		c = 31
	}
	if c < 0 {
		c = 0
	}
	return uint8(c)
}

func (qp *QP) sendAck(psn uint32) {
	qp.nic.Stats.AcksSent++
	qp.txPkt = roce.Packet{
		SrcIP: qp.nic.ip, DstIP: qp.remoteIP, SrcPort: roce.UDPPort,
		OpCode: roce.OpAcknowledge, DestQP: qp.remoteQPN, PSN: psn,
		Syndrome: roce.MakeSyndrome(roce.AckPositive, qp.advertisedCredits()),
		MSN:      qp.msn,
	}
	qp.nic.transmit(&qp.txPkt)
}

func (qp *QP) sendNak(psn uint32, code uint8) {
	qp.nic.Stats.NaksSent++
	qp.txPkt = roce.Packet{
		SrcIP: qp.nic.ip, DstIP: qp.remoteIP, SrcPort: roce.UDPPort,
		OpCode: roce.OpAcknowledge, DestQP: qp.remoteQPN, PSN: psn,
		Syndrome: roce.MakeSyndrome(roce.AckNAK, code),
		MSN:      qp.msn,
	}
	qp.nic.transmit(&qp.txPkt)
}

func (qp *QP) sendRNR(psn uint32) {
	qp.nic.Stats.RNRsSent++
	qp.nic.mRNRNaks.Inc()
	qp.txPkt = roce.Packet{
		SrcIP: qp.nic.ip, DstIP: qp.remoteIP, SrcPort: roce.UDPPort,
		OpCode: roce.OpAcknowledge, DestQP: qp.remoteQPN, PSN: psn,
		Syndrome: roce.MakeSyndrome(roce.AckRNR, 1),
		MSN:      qp.msn,
	}
	qp.nic.transmit(&qp.txPkt)
}

// checkSequence validates the inbound PSN. It returns false (after
// responding appropriately) when the packet must not be executed.
func (qp *QP) checkSequence(p *roce.Packet) bool {
	d := roce.PSNDiff(p.PSN, qp.expPSN)
	switch {
	case d == 0:
		qp.nakArmed = false
		return true
	case d < 0:
		// Duplicate from a go-back-N retransmission: re-acknowledge the
		// most recent in-sequence packet so the requester makes progress.
		if p.AckReq || p.OpCode.EndsMessage() {
			qp.sendAck(roce.PSNAdd(qp.expPSN, -1))
		}
		return false
	default:
		// One NAK per gap: real responders suppress repeats until the
		// missing packet arrives, avoiding NAK storms on long messages.
		if !qp.nakArmed {
			qp.nakArmed = true
			qp.nic.mPSNGaps.Inc()
			qp.sendNak(qp.expPSN, roce.NakPSNSequenceError)
		}
		return false
	}
}

func (qp *QP) handleInboundWrite(p *roce.Packet) {
	if !qp.checkSequence(p) {
		return
	}
	starts := p.OpCode == roce.OpWriteFirst || p.OpCode == roce.OpWriteOnly
	if starts {
		mr, ok := qp.nic.lookupMR(p.RKey)
		if !ok || !mr.checkWrite(p.SrcIP, p.VA, int(p.DMALen)) {
			qp.sendNak(p.PSN, roce.NakRemoteAccessError)
			return
		}
		if qp.freeSlots <= 0 {
			qp.sendRNR(p.PSN)
			return
		}
		qp.consumeSlot()
		qp.curMR = mr
		qp.curVA = p.VA
		qp.curRemaining = int(p.DMALen)
	}
	if qp.curMR == nil {
		qp.sendNak(p.PSN, roce.NakInvalidRequest)
		return
	}
	if qp.nic.otr != nil {
		// B2 fallback (first-wins): a replica accepted the write. In
		// switch mode the egress rewrite re-annotated the per-replica
		// (QP, PSN); in direct mode this is the leader's own annotation.
		qp.nic.otr.Mark(qp.nic.oc, qp.nic.otr.Lookup(qp.nic.shard, qp.num, p.PSN), otrace.MarkReplicaRx)
	}
	qp.curMR.write(qp.curVA, p.Payload)
	qp.curVA += uint64(len(p.Payload))
	qp.curRemaining -= len(p.Payload)
	qp.expPSN = roce.PSNNext(qp.expPSN)
	if p.OpCode.EndsMessage() {
		qp.msn = (qp.msn + 1) & roce.PSNMask
		qp.curMR = nil
	}
	if p.AckReq || p.OpCode.EndsMessage() {
		qp.sendAck(p.PSN)
	}
}

func (qp *QP) handleInboundRead(p *roce.Packet) {
	// Duplicate read requests are re-executed from current memory (the
	// IB spec's rule): when a read response is lost, the requester's
	// retransmitted request must produce a fresh response rather than a
	// bare ACK.
	d := roce.PSNDiff(p.PSN, qp.expPSN)
	if d > 0 {
		if !qp.nakArmed {
			qp.nakArmed = true
			qp.nic.mPSNGaps.Inc()
			qp.sendNak(qp.expPSN, roce.NakPSNSequenceError)
		}
		return
	}
	qp.nakArmed = false
	mr, ok := qp.nic.lookupMR(p.RKey)
	if !ok || !mr.checkRead(p.VA, int(p.DMALen)) {
		qp.sendNak(p.PSN, roce.NakRemoteAccessError)
		return
	}
	data := mr.read(p.VA, int(p.DMALen))
	n := roce.SegmentCount(len(data), qp.nic.cfg.MTUPayload)
	if d == 0 {
		qp.expPSN = roce.PSNAdd(p.PSN, n)
		qp.msn = (qp.msn + 1) & roce.PSNMask
	}
	for i := 0; i < n; i++ {
		seg := roce.ReadRespSegmentAt(len(data), qp.nic.cfg.MTUPayload, p.PSN, i, n)
		qp.txPkt = roce.Packet{
			SrcIP: qp.nic.ip, DstIP: qp.remoteIP, SrcPort: roce.UDPPort,
			OpCode: seg.OpCode, DestQP: qp.remoteQPN, PSN: seg.PSN,
			Payload: data[seg.Offset : seg.Offset+seg.Length],
		}
		if seg.OpCode.HasAETH() {
			qp.txPkt.Syndrome = roce.MakeSyndrome(roce.AckPositive, qp.advertisedCredits())
			qp.txPkt.MSN = qp.msn
		}
		qp.nic.transmit(&qp.txPkt)
	}
}

func (qp *QP) handleInboundSend(p *roce.Packet) {
	if !qp.checkSequence(p) {
		return
	}
	if qp.freeSlots <= 0 {
		qp.sendRNR(p.PSN)
		return
	}
	qp.consumeSlot()
	qp.expPSN = roce.PSNNext(qp.expPSN)
	qp.msn = (qp.msn + 1) & roce.PSNMask
	if qp.onRecv != nil {
		qp.onRecv(p.Payload)
	}
	qp.sendAck(p.PSN)
}

// consumeSlot takes one responder slot and schedules its release after
// the apply delay (immediately when the delay is zero, modelling a host
// that drains its ring as fast as the NIC fills it).
func (qp *QP) consumeSlot() {
	if qp.nic.cfg.ApplyDelay <= 0 {
		return
	}
	qp.freeSlots--
	qp.nic.k.Schedule(qp.nic.cfg.ApplyDelay, qp.slotFreeFn)
}
