// Package rnic simulates an RDMA-capable network card speaking RoCE v2
// with reliable-connection semantics: queue pairs, registered memory
// regions protected by R_keys and per-writer permissions, one-sided
// READ/WRITE executed entirely inside the NIC (no host CPU
// involvement), acknowledgment generation with credit advertisement,
// NAKs for access and sequence errors, and go-back-N retransmission
// with the discrete 4.096×2^x µs timeout values real cards use.
//
// The protocols above (mu and the core engine) only ever interact with
// this verbs-like surface, so their code paths are the same ones that
// would run against hardware. Below, the NIC owns one simnet port and
// encodes/decodes frames with package roce.
//
// # Buffer ownership
//
// Outbound payloads are copied into pooled frames at post time, so a
// caller's slice is free for reuse the moment PostWrite/PostSend
// returns. Inbound payloads follow the roce aliasing rule: a QP
// handler's payload view dies when the handler returns; registered
// memory regions are the only stable store.
package rnic
