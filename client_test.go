package p4ce

import (
	"fmt"
	"reflect"
	"testing"
	"testing/quick"
	"time"
)

func TestSessionEnvelopeRoundtrip(t *testing.T) {
	f := func(session uint32, seq uint64, payload []byte) bool {
		s, q, p, err := UnwrapSession(WrapSession(session, seq, payload))
		if err != nil {
			return false
		}
		if len(payload) == 0 {
			return s == session && q == seq && len(p) == 0
		}
		return s == session && q == seq && reflect.DeepEqual(p, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := UnwrapSession([]byte("short")); err == nil {
		t.Fatal("short command accepted as sessioned")
	}
}

func TestDedupSuppressesReplays(t *testing.T) {
	kv := NewKV()
	d := NewDedup(kv)
	cmd := WrapSession(7, 1, SetCommand("a", "1"))
	d.Apply(1, cmd)
	d.Apply(2, cmd)                                            // exact replay
	d.Apply(3, WrapSession(7, 1, SetCommand("a", "override"))) // same seq, different body
	if v, _ := kv.Get("a"); v != "1" {
		t.Fatalf("a = %q, want first write to win", v)
	}
	if d.Skipped != 2 {
		t.Fatalf("Skipped = %d, want 2", d.Skipped)
	}
	// New sequence applies; other sessions are independent.
	d.Apply(4, WrapSession(7, 2, SetCommand("a", "2")))
	d.Apply(5, WrapSession(9, 1, SetCommand("b", "x")))
	if v, _ := kv.Get("a"); v != "2" {
		t.Fatalf("a = %q after seq 2", v)
	}
	if v, _ := kv.Get("b"); v != "x" {
		t.Fatalf("b = %q from second session", v)
	}
	// Un-sessioned commands pass through.
	d.Apply(6, SetCommand("raw", "ok"))
	if v, _ := kv.Get("raw"); v != "ok" {
		t.Fatal("raw command did not pass through")
	}
}

func TestClientSubmitsThroughLeaderChanges(t *testing.T) {
	cl := NewCluster(Options{Nodes: 5, Mode: ModeP4CE, Seed: 31, AsyncReconfig: true})
	kvs := make([]*KV, 5)
	for i, n := range cl.Nodes() {
		kvs[i] = NewKV()
		n.Bind(NewDedup(kvs[i]))
	}
	if _, err := cl.RunUntilLeader(300 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	client := cl.NewClient()
	client.RetryDelay = 200 * time.Microsecond

	const writes = 100
	acked := 0
	for i := 0; i < writes; i++ {
		i := i
		cl.After(time.Duration(i)*50*time.Microsecond, func() {
			client.SubmitKV(fmt.Sprintf("k%03d", i), fmt.Sprintf("v%d", i), func(err error) {
				if err != nil {
					t.Fatalf("submit %d: %v", i, err)
				}
				acked++
			})
		})
	}
	// Crash the leader in the middle of the stream.
	cl.After(2*time.Millisecond, func() {
		if l := cl.Leader(); l != nil {
			l.Crash()
		}
	})
	cl.Run(120 * time.Millisecond)
	if acked != writes {
		t.Fatalf("acked %d of %d", acked, writes)
	}
	// Every surviving replica has all keys exactly once, identical state.
	var reference map[string]string
	for i, n := range cl.Nodes() {
		if n.Crashed() {
			continue
		}
		snap := kvs[i].Snapshot()
		if len(snap) != writes {
			t.Fatalf("node %d holds %d keys, want %d", i, len(snap), writes)
		}
		if reference == nil {
			reference = snap
		} else if !reflect.DeepEqual(snap, reference) {
			t.Fatalf("node %d diverged", i)
		}
	}
	if client.Retries == 0 {
		t.Log("note: crash fell between submissions; no retries exercised")
	}
}

func TestClientExactlyOnceUnderForcedDuplicates(t *testing.T) {
	// Force the duplicate hazard deterministically: submit, let it
	// commit, then re-propose the identical sessioned command directly
	// (as a retrying client would after losing the ack). The KV applies
	// it once; the raw duplicate is visible in Dedup.Skipped.
	cl := NewCluster(Options{Nodes: 3, Mode: ModeP4CE, Seed: 32})
	kv := NewKV()
	dedup := NewDedup(kv)
	cl.Node(1).Bind(dedup)
	leader, err := cl.RunUntilLeader(300 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	client := cl.NewClient()
	counterCmd := WrapSession(client.Session(), 1, SetCommand("x", "once"))
	if err := leader.Propose(counterCmd, nil); err != nil {
		t.Fatal(err)
	}
	cl.Run(5 * time.Millisecond)
	if err := leader.Propose(counterCmd, nil); err != nil { // the "retry"
		t.Fatal(err)
	}
	cl.Run(5 * time.Millisecond)
	if dedup.Skipped != 1 {
		t.Fatalf("Skipped = %d, want 1 (the duplicate)", dedup.Skipped)
	}
	if kv.AppliedCount != 1 {
		t.Fatalf("AppliedCount = %d, want 1", kv.AppliedCount)
	}
}

func TestClientGivesUpAfterMaxRetries(t *testing.T) {
	cl := NewCluster(Options{Nodes: 3, Mode: ModeP4CE, Seed: 33})
	if _, err := cl.RunUntilLeader(300 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	// Kill everything: no leader will ever answer.
	for _, n := range cl.Nodes() {
		n.Crash()
	}
	client := cl.NewClient()
	client.MaxRetries = 3
	client.RetryDelay = 100 * time.Microsecond
	var gotErr error
	client.Submit([]byte("doomed"), func(err error) { gotErr = err })
	cl.Run(10 * time.Millisecond)
	if gotErr == nil {
		t.Fatal("submit against a dead cluster succeeded?")
	}
}

// Property: sessionState recognizes exactly the marked sequence numbers,
// under arbitrary arrival orders.
func TestSessionStateProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		var st sessionState
		marked := make(map[uint64]bool)
		for _, r := range raw {
			seq := uint64(r%512) + 1
			if st.seen(seq) != marked[seq] {
				return false
			}
			if !marked[seq] {
				st.mark(seq)
				marked[seq] = true
			}
		}
		for seq := uint64(1); seq <= 512; seq++ {
			if st.seen(seq) != marked[seq] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSessionStateCompaction(t *testing.T) {
	var st sessionState
	// Mark out of order: 3,1,2 → contiguous must reach 3 with no sparse
	// residue.
	st.mark(3)
	st.mark(1)
	st.mark(2)
	if st.contiguous != 3 || len(st.sparse) != 0 {
		t.Fatalf("contiguous=%d sparse=%v", st.contiguous, st.sparse)
	}
}
