package p4ce_test

// testing.B entry points for every experiment in the paper's evaluation.
// Each benchmark drives the deterministic simulation for b.N consensus
// operations (or b.N measurement rounds for the fail-over numbers) and
// reports the simulated performance through custom metrics:
//
//	sim-consensus/s   simulated consensus operations per second
//	sim-goodput-GB/s  simulated client payload bandwidth
//	sim-latency-us    simulated mean commit latency
//	sim-failover-ms   simulated fail-over time
//
// (ns/op measures host wall-clock per simulated operation and is only a
// statement about the simulator's own speed.)
//
// The mapping to the paper:
//
//	BenchmarkFig5Goodput*      → Figure 5
//	BenchmarkMaxConsensus*     → §V-C maximum consensus/s
//	BenchmarkFig6Latency*      → Figure 6 (one representative point)
//	BenchmarkFig7Burst*        → Figure 7
//	BenchmarkFailover*         → Table IV
//	BenchmarkAckPlacement      → §IV-D Lesson (ablation)

import (
	"fmt"
	"testing"
	"time"

	"p4ce"
	"p4ce/internal/bench"
)

// runClosedLoop is the shared harness for throughput-style benchmarks.
func runClosedLoop(b *testing.B, mode p4ce.Mode, replicas, size, depth int) {
	b.Helper()
	cl, leader, err := bench.Steady(p4ce.Options{
		Nodes: replicas + 1,
		Mode:  mode,
		Seed:  1,
	})
	if err != nil {
		b.Fatal(err)
	}
	ops := b.N
	if ops < 100 {
		ops = 100
	}
	res, err := bench.ClosedLoop(cl, leader, size, depth, ops/10, ops)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(res.Throughput, "sim-consensus/s")
	b.ReportMetric(res.GoodputBytes/1e9, "sim-goodput-GB/s")
	b.ReportMetric(float64(res.MeanLat)/float64(time.Microsecond), "sim-latency-us")
}

func BenchmarkMaxConsensus(b *testing.B) {
	for _, replicas := range []int{2, 4} {
		for _, mode := range []p4ce.Mode{p4ce.ModeMu, p4ce.ModeP4CE} {
			b.Run(fmt.Sprintf("%v/%dreplicas/64B", mode, replicas), func(b *testing.B) {
				runClosedLoop(b, mode, replicas, 64, 16)
			})
		}
	}
}

func BenchmarkFig5Goodput(b *testing.B) {
	for _, replicas := range []int{2, 4} {
		for _, size := range []int{512, 4096} {
			for _, mode := range []p4ce.Mode{p4ce.ModeMu, p4ce.ModeP4CE} {
				b.Run(fmt.Sprintf("%v/%dreplicas/%dB", mode, replicas, size), func(b *testing.B) {
					runClosedLoop(b, mode, replicas, size, 128)
				})
			}
		}
	}
}

func BenchmarkFig6Latency(b *testing.B) {
	// One representative low-load point per system: the paper's "below
	// the knee P4CE's latency is ≈10% lower" claim.
	for _, mode := range []p4ce.Mode{p4ce.ModeMu, p4ce.ModeP4CE} {
		b.Run(fmt.Sprintf("%v/2replicas/lowload", mode), func(b *testing.B) {
			runClosedLoop(b, mode, 2, 64, 1)
		})
	}
}

func BenchmarkFig7Burst(b *testing.B) {
	for _, mode := range []p4ce.Mode{p4ce.ModeMu, p4ce.ModeP4CE} {
		for _, burst := range []int{10, 100} {
			b.Run(fmt.Sprintf("%v/burst%d", mode, burst), func(b *testing.B) {
				cl, leader, err := bench.Steady(p4ce.Options{Nodes: 3, Mode: mode, Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
				payload := make([]byte, 64)
				var total time.Duration
				for i := 0; i < b.N; i++ {
					start := cl.Now()
					done := 0
					for j := 0; j < burst; j++ {
						if err := leader.Propose(payload, func(err error) {
							if err == nil {
								done++
							}
						}); err != nil {
							b.Fatal(err)
						}
					}
					for done < burst {
						if !cl.Step() {
							b.Fatal("stalled")
						}
					}
					total += cl.Now() - start
					cl.Run(100 * time.Microsecond)
				}
				b.ReportMetric(float64(total)/float64(b.N)/float64(time.Microsecond), "sim-burst-latency-us")
			})
		}
	}
}

func BenchmarkFailover(b *testing.B) {
	cfg := bench.DefaultFailoverConfig()
	for _, mode := range []p4ce.Mode{p4ce.ModeMu, p4ce.ModeP4CE} {
		b.Run(mode.String(), func(b *testing.B) {
			var acc bench.FailoverTimes
			for i := 0; i < b.N; i++ {
				cfg.Seed = int64(i + 1)
				ft, err := bench.RunFailover(mode, cfg)
				if err != nil {
					b.Fatal(err)
				}
				acc.ReplicaCrash += ft.ReplicaCrash
				acc.LeaderCrash += ft.LeaderCrash
				acc.SwitchCrash += ft.SwitchCrash
				acc.GroupConfig += ft.GroupConfig
			}
			n := time.Duration(b.N)
			b.ReportMetric(float64(acc.LeaderCrash/n)/float64(time.Millisecond), "sim-leader-failover-ms")
			b.ReportMetric(float64(acc.ReplicaCrash/n)/float64(time.Millisecond), "sim-replica-failover-ms")
			b.ReportMetric(float64(acc.SwitchCrash/n)/float64(time.Millisecond), "sim-switch-failover-ms")
			if mode == p4ce.ModeP4CE {
				b.ReportMetric(float64(acc.GroupConfig/n)/float64(time.Millisecond), "sim-group-config-ms")
			}
		})
	}
}

func BenchmarkAckPlacement(b *testing.B) {
	ops := b.N
	if ops < 500 {
		ops = 500
	}
	res, err := bench.RunAckAggregationAblation(4, ops, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(res.IngressDropRate, "sim-ingress-drop-consensus/s")
	b.ReportMetric(res.EgressDropRate, "sim-egress-drop-consensus/s")
	b.ReportMetric(res.Speedup, "sim-speedup")
}
