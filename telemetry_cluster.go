package p4ce

import (
	"errors"
	"fmt"
	"io"

	swp4ce "p4ce/internal/p4ce"
	"p4ce/internal/telemetry"
)

// DefaultCommitP99SLO is the latency objective the telemetry SLO
// engine monitors per shard: interval p99 of commit latency must stay
// below this many nanoseconds (100 µs — an order of magnitude above
// the healthy p99, so only real degradation fires it).
const DefaultCommitP99SLO = 100_000

// ErrTelemetryDisabled reports an export from a cluster built without
// Options.EnableTelemetry.
var ErrTelemetryDisabled = errors.New("p4ce: cluster built without Options.EnableTelemetry")

// buildTelemetry wires the time-series pipeline: one sampler per
// scheduling domain, reading only instruments written by that domain —
// the property that keeps the timeline bit-identical at every
// partition count (see package telemetry). Called after every shard is
// built, so all instrument handles already exist.
func (c *Cluster) buildTelemetry() {
	cfg := telemetry.Config{}
	if c.opts.TelemetryInterval > 0 {
		cfg.Interval = simDuration(c.opts.TelemetryInterval)
	}
	tl := telemetry.New(cfg)
	m := c.kernel.Metrics()

	// Fabric domain (0): switch-side series. The dataplane Stats
	// structs are plain cumulative fields written by switch pipelines,
	// which all run on the fabric domain; RateFn's reset rule absorbs a
	// rebooting switch zeroing them.
	fd := tl.Domain(0, c.kernel)
	registerDP := func(label string, dp *swp4ce.Dataplane) {
		fd.RateFn(label+".scattered", func() uint64 { return dp.Stats.Scattered })
		fd.RateFn(label+".scatter_retransmits", func() uint64 { return dp.Stats.ScatterRetransmits })
		fd.RateFn(label+".acks_forwarded", func() uint64 { return dp.Stats.AcksForwarded })
		fd.RateFn(label+".acks_up_forwarded", func() uint64 { return dp.Stats.AcksUpForwarded })
	}
	if c.fabric != nil {
		for r := 0; r < c.fabric.Racks(); r++ {
			registerDP(fmt.Sprintf("rack%d", r), c.dps[c.fabric.OriginalToR(r)])
		}
		if sb := c.fabric.Standby(); sb != nil {
			registerDP("standby", c.dps[sb])
		}
	} else if c.dp != nil {
		registerDP("switch", c.dp)
	}

	// Shard domains (1+s): the consensus view. Every instrument here is
	// written only by shard s's machines, which all live on domain 1+s.
	for s, sh := range c.shards {
		d := tl.Domain(1+s, sh.kernel)
		label := fmt.Sprintf("shard%d", s)
		commits := m.Counter(fmt.Sprintf("mu.shard%d.committed", s))
		proposed := m.Counter(fmt.Sprintf("mu.shard%d.proposed", s))
		lat := m.Histogram(fmt.Sprintf("mu.shard%d.commit_latency_ns", s))
		retx := m.Counter(fmt.Sprintf("rnic.shard%d.retransmits", s))
		rto := m.Counter(fmt.Sprintf("rnic.shard%d.rto_fires", s))

		d.Rate(label+".commits", commits)
		d.Rate(label+".proposed", proposed)
		d.Quantile(label+".commit_latency_ns", lat)
		d.Rate(label+".retransmits", retx)
		d.Rate(label+".rto_fires", rto)
		nodes := sh.nodes
		d.GaugeFn(label+".commit_index", func() int64 {
			var max uint64
			for _, n := range nodes {
				if ci := n.CommitIndex(); ci > max {
					max = ci
				}
			}
			return int64(max)
		})

		// The three SLOs, all gated on the shard's first commit so a
		// cluster still electing its first leader is not an "outage".
		d.Objective(telemetry.ObjectiveSpec{
			Name: label + "/availability", Kind: telemetry.Availability,
			Series: label + ".commits", Gate: commits.Value,
		})
		d.Objective(telemetry.ObjectiveSpec{
			Name: label + "/retransmit-rate", Kind: telemetry.RateAbove,
			Series: label + ".retransmits", Threshold: 1, Gate: commits.Value,
		})
		d.Objective(telemetry.ObjectiveSpec{
			Name: label + "/commit-p99", Kind: telemetry.QuantileAbove,
			Series: label + ".commit_latency_ns", Threshold: DefaultCommitP99SLO,
			Gate: commits.Value,
		})
	}

	tl.Start()
	c.tl = tl
}

// Telemetry returns the timeline, or nil without Options.EnableTelemetry.
func (c *Cluster) Telemetry() *telemetry.Timeline { return c.tl }

// ExportTelemetryJSON writes the full timeline and merged alert log as
// deterministic JSON — byte-identical for the same options and seed at
// every partition count.
func (c *Cluster) ExportTelemetryJSON(w io.Writer) error {
	if c.tl == nil {
		return ErrTelemetryDisabled
	}
	return c.tl.WriteJSON(w)
}

// ExportOpenMetrics writes every retained sample as OpenMetrics text
// (terminated by "# EOF") — byte-identical for the same options and
// seed at every partition count.
func (c *Cluster) ExportOpenMetrics(w io.Writer) error {
	if c.tl == nil {
		return ErrTelemetryDisabled
	}
	return c.tl.WriteOpenMetrics(w)
}
