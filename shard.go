package p4ce

// Shard is one independent consensus group of a sharded cluster: its
// own machines, logs and leader, replicated through its own multicast/
// gather group on the shared switch. Shards fail and recover
// independently — a leader outage or switch-group loss in one shard
// never stalls the others — while sharing the simulation kernel, the
// fabric, and (in P4CE mode) the programmable switch's data plane.
type Shard struct {
	cluster *Cluster
	index   int
	nodes   []*Node
}

// Index returns the shard's position in the cluster (0-based).
func (s *Shard) Index() int { return s.index }

// Nodes returns the shard's machines in identifier order. Machine
// identifiers are shard-local: every shard numbers its machines
// 0..Nodes-1, and the lowest live identifier leads.
func (s *Shard) Nodes() []*Node { return s.nodes }

// Node returns the shard's machine i.
func (s *Shard) Node(i int) *Node { return s.nodes[i] }

// Leader returns the shard's current leader, or nil. Crashed machines
// are skipped; among live claimants the highest term wins.
func (s *Shard) Leader() *Node {
	var best *Node
	for _, n := range s.nodes {
		if n.mu.Crashed() || !n.mu.IsLeader() {
			continue
		}
		if best == nil || n.mu.Term() > best.mu.Term() {
			best = n
		}
	}
	return best
}
