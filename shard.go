package p4ce

import (
	"time"

	"p4ce/internal/sim"
)

// Shard is one independent consensus group of a sharded cluster: its
// own machines, logs and leader, replicated through its own multicast/
// gather group on the shared switch. Shards fail and recover
// independently — a leader outage or switch-group loss in one shard
// never stalls the others — while sharing the simulation kernel, the
// fabric, and (in P4CE mode) the programmable switch's data plane.
type Shard struct {
	cluster *Cluster
	index   int
	kernel  *sim.Kernel // the shard's scheduling domain
	nodes   []*Node
}

// Index returns the shard's position in the cluster (0-based).
func (s *Shard) Index() int { return s.index }

// Nodes returns the shard's machines in identifier order. Machine
// identifiers are shard-local: every shard numbers its machines
// 0..Nodes-1, and the lowest live identifier leads.
func (s *Shard) Nodes() []*Node { return s.nodes }

// Node returns the shard's machine i.
func (s *Shard) Node(i int) *Node { return s.nodes[i] }

// After schedules fn to run d from now on the shard's scheduling
// domain. On a partitioned cluster this is the only safe place to call
// into the shard's machines (Propose, Client.Submit, stats reads) from
// a workload callback: the callback executes on the shard's domain,
// under its clock, never racing another partition. On a classic
// cluster it is identical to Cluster.After.
func (s *Shard) After(d time.Duration, fn func()) {
	s.kernel.Schedule(simDuration(d), fn)
}

// Now returns the shard domain's current simulated time. Inside an
// After callback this is the shard's own clock (which may run up to one
// lookahead ahead of or behind other domains mid-window); between Run
// calls every domain agrees.
func (s *Shard) Now() time.Duration { return time.Duration(s.kernel.Now()) }

// Leader returns the shard's current leader, or nil. Crashed machines
// are skipped; among live claimants the highest term wins.
func (s *Shard) Leader() *Node {
	var best *Node
	for _, n := range s.nodes {
		if n.mu.Crashed() || !n.mu.IsLeader() {
			continue
		}
		if best == nil || n.mu.Term() > best.mu.Term() {
			best = n
		}
	}
	return best
}
