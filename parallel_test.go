package p4ce

// Parallel-kernel integration tests: the partitioned scheduler
// (Options.Partitions, internal/sim.Group) must replay bit-identically
// at every partition count — same commits, same per-node applied
// histories, same event totals, byte-identical Perfetto trace exports —
// because the event order is fixed by (time, domain, sequence) keys, not
// by which partition executed an event first. These tests drive their
// workloads through Shard.After/Shard.Now, the documented way to call
// into a shard's machines on a partitioned cluster.

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"sort"
	"testing"
	"time"
)

// parallelRun condenses one partitioned run into comparable form.
type parallelRun struct {
	events uint64
	acked  int
	fp     uint64 // FNV-1a over acks, applied histories, node state
	trace  []byte // Perfetto export, compared byte for byte
}

// runPartitioned runs a fixed sharded workload on a cluster with the
// given partition count and fingerprints everything observable.
func runPartitioned(t *testing.T, partitions int) parallelRun {
	t.Helper()
	const shards = 3
	cl := NewCluster(Options{
		Nodes: 3, Shards: shards, Mode: ModeP4CE, Seed: 4242,
		Partitions: partitions, EnableTracing: true,
	})
	type rec struct {
		idx  uint64
		data string
	}
	applied := make([][]rec, len(cl.Nodes()))
	for gi, n := range cl.Nodes() {
		gi := gi
		// Fires on the owning shard's domain; applied[gi] is touched by
		// that domain alone.
		n.OnApply(func(index uint64, data []byte) {
			applied[gi] = append(applied[gi], rec{index, string(data)})
		})
	}
	if _, err := cl.RunUntilAllLeaders(500 * time.Millisecond); err != nil {
		t.Fatalf("partitions=%d: %v", partitions, err)
	}
	acked := make([]int, shards)
	for s := 0; s < shards; s++ {
		s := s
		sh := cl.Shard(s)
		c := cl.NewClientForShard(s)
		c.RetryDelay = 500 * time.Microsecond
		seq := 0
		var tick func()
		tick = func() {
			seq++
			c.SubmitKV(fmt.Sprintf("s%d:k%03d", s, seq), "v", func(err error) {
				if err == nil {
					acked[s]++
				}
			})
			if seq < 80 {
				sh.After(60*time.Microsecond, tick)
			}
		}
		sh.After(time.Duration(s+1)*25*time.Microsecond, tick)
	}
	cl.Run(25 * time.Millisecond)

	h := fnv.New64a()
	total := 0
	for _, a := range acked {
		total += a
	}
	fmt.Fprintf(h, "events=%d acked=%v", cl.EventsProcessed(), acked)
	for gi, n := range cl.Nodes() {
		recs := applied[gi]
		sort.Slice(recs, func(a, b int) bool { return recs[a].idx < recs[b].idx })
		fmt.Fprintf(h, "|node%d commit=%d term=%d", gi, n.CommitIndex(), n.Term())
		for _, r := range recs {
			fmt.Fprintf(h, ";%d=%s", r.idx, r.data)
		}
	}
	var tr bytes.Buffer
	if err := cl.ExportTrace(&tr); err != nil {
		t.Fatalf("partitions=%d: export trace: %v", partitions, err)
	}
	return parallelRun{
		events: cl.EventsProcessed(),
		acked:  total,
		fp:     h.Sum64(),
		trace:  tr.Bytes(),
	}
}

// TestParallelKernelDeterminism is the tentpole property: identical
// options and seed replay bit-identically at partition counts 1, 2 and
// 4, and re-running any count reproduces itself.
func TestParallelKernelDeterminism(t *testing.T) {
	base := runPartitioned(t, 1)
	if base.acked == 0 {
		t.Fatal("no write was ever acknowledged")
	}
	for _, p := range []int{2, 4} {
		got := runPartitioned(t, p)
		if got.events != base.events || got.fp != base.fp || got.acked != base.acked {
			t.Fatalf("partitions=%d diverged from partitions=1: events %d vs %d, acked %d vs %d, fp %x vs %x",
				p, got.events, base.events, got.acked, base.acked, got.fp, base.fp)
		}
		if !bytes.Equal(got.trace, base.trace) {
			t.Fatalf("partitions=%d: Perfetto export differs from partitions=1 (%d vs %d bytes)",
				p, len(got.trace), len(base.trace))
		}
	}
	replay := runPartitioned(t, 2)
	if replay.events != base.events || replay.fp != base.fp {
		t.Fatalf("partitions=2 replay diverged from itself: events %d vs %d, fp %x vs %x",
			replay.events, base.events, replay.fp, base.fp)
	}
}

// TestShardClock covers the Shard.After/Shard.Now workload surface:
// callbacks run on the shard's domain under its clock, and the clocks
// of every domain agree between Run calls.
func TestShardClock(t *testing.T) {
	cl := NewCluster(Options{Nodes: 3, Shards: 2, Mode: ModeP4CE, Seed: 7, Partitions: 2})
	if cl.Partitions() != 2 {
		t.Fatalf("Partitions() = %d, want 2", cl.Partitions())
	}
	var at [2]time.Duration
	for s := 0; s < 2; s++ {
		s := s
		sh := cl.Shard(s)
		sh.After(time.Duration(s+1)*time.Millisecond, func() { at[s] = sh.Now() })
	}
	cl.Run(5 * time.Millisecond)
	for s := 0; s < 2; s++ {
		want := time.Duration(s+1) * time.Millisecond
		if at[s] != want {
			t.Fatalf("shard %d callback at %v, want %v", s, at[s], want)
		}
	}
	if now := cl.Now(); now != 5*time.Millisecond {
		t.Fatalf("fabric clock at %v after Run(5ms)", now)
	}
	for s := 0; s < 2; s++ {
		if sn := cl.Shard(s).Now(); sn != 5*time.Millisecond {
			t.Fatalf("shard %d clock at %v between Run calls, want %v", s, sn, 5*time.Millisecond)
		}
	}
}
